package lt

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/code"
)

func randomSrc(t testing.TB, rng *rand.Rand, k, pl int) [][]byte {
	t.Helper()
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, pl)
		rng.Read(src[i])
	}
	return src
}

// decodeStream feeds consecutive indices from base, dropping each packet
// with probability loss, until the decoder completes. It returns the number
// of distinct packets the decoder accepted.
func decodeStream(t *testing.T, c *Codec, src [][]byte, base uint32, loss float64, rng *rand.Rand) int {
	t.Helper()
	d := c.NewDecoder()
	budget := 8*c.K() + 1024
	for i := 0; i < budget; i++ {
		if rng.Float64() < loss {
			continue
		}
		idx := base + uint32(i)
		pkts, err := c.EncodeRange(src, int(idx), int(idx)+1)
		if err != nil {
			t.Fatalf("EncodeRange(%d): %v", idx, err)
		}
		done, err := d.Add(int(idx), pkts[0])
		if err != nil {
			t.Fatalf("Add(%d): %v", idx, err)
		}
		if done {
			got, err := d.Source()
			if err != nil {
				t.Fatalf("Source: %v", err)
			}
			for s := range src {
				if !bytes.Equal(got[s], src[s]) {
					t.Fatalf("symbol %d mismatch", s)
				}
			}
			return d.Received()
		}
	}
	t.Fatalf("decoder not done after %d offered packets (received %d, k=%d)", budget, d.Received(), c.K())
	return 0
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 16, 100, 500} {
		c, err := New(k, 64, 42, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := randomSrc(t, rng, k, 64)
		recv := decodeStream(t, c, src, 0, 0, rng)
		t.Logf("k=%4d received=%d overhead=%.3f", k, recv, float64(recv)/float64(k))
	}
}

func TestRoundTripWithLossAndOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, err := New(200, 32, -987654321, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	src := randomSrc(t, rng, 200, 32)
	// Stream from a large index base (as a long-running mirror would) with
	// 20% loss: completion must not depend on low indices or density.
	recv := decodeStream(t, c, src, 3<<29, 0.20, rng)
	t.Logf("received=%d overhead=%.3f", recv, float64(recv)/200)
}

// TestReceptionOverhead is the codec-level half of the ISSUE acceptance
// bar: average reception overhead at k=10000 under 10-20% loss must stay
// within 1.15·k. (The end-to-end check over the mirrored harness lives in
// internal/harness.)
func TestReceptionOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("k=10000 decode trials")
	}
	const k, pl, trials = 10000, 16, 3
	c, err := New(k, pl, 1998, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	src := randomSrc(t, rng, k, pl)
	total := 0
	for trial := 0; trial < trials; trial++ {
		loss := 0.10 + 0.05*float64(trial)
		recv := decodeStream(t, c, src, uint32(trial)<<24, loss, rng)
		total += recv
		t.Logf("trial %d (loss %.2f): received=%d overhead=%.4f", trial, loss, recv, float64(recv)/k)
	}
	avg := float64(total) / float64(trials) / float64(k)
	t.Logf("average overhead %.4f", avg)
	if avg > 1.15 {
		t.Fatalf("average reception overhead %.4f exceeds 1.15", avg)
	}
}

func TestNeighborsDeterministicInRangeDupFree(t *testing.T) {
	for _, k := range []int{1, 2, 7, 1000} {
		c, err := New(k, 8, 99, 0.2, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		var a, b []int
		for idx := uint32(0); idx < 500; idx++ {
			a = c.NeighborsInto(idx, a)
			b = c.NeighborsInto(idx, b)
			if len(a) != len(b) {
				t.Fatalf("k=%d idx=%d: nondeterministic length %d vs %d", k, idx, len(a), len(b))
			}
			seen := make(map[int]bool, len(a))
			for i, nb := range a {
				if nb != b[i] {
					t.Fatalf("k=%d idx=%d: nondeterministic entry %d", k, idx, i)
				}
				if nb < 0 || nb >= k {
					t.Fatalf("k=%d idx=%d: neighbor %d out of range", k, idx, nb)
				}
				if seen[nb] {
					t.Fatalf("k=%d idx=%d: duplicate neighbor %d", k, idx, nb)
				}
				seen[nb] = true
			}
			if d := c.Degree(idx); d != len(a) {
				t.Fatalf("k=%d idx=%d: Degree=%d but %d neighbors", k, idx, d, len(a))
			}
		}
	}
}

func TestDegreeDistributionShape(t *testing.T) {
	const k = 2000
	c, err := New(k, 8, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 20000
	sum, ones := 0, 0
	for idx := uint32(0); idx < samples; idx++ {
		d := c.Degree(idx)
		if d < 1 || d > k {
			t.Fatalf("degree %d out of [1,%d]", d, k)
		}
		sum += d
		if d == 1 {
			ones++
		}
	}
	avg := float64(sum) / samples
	// Robust soliton average degree is Θ(ln(k/δ)): sanity-bound it.
	if avg < 2 || avg > 40 {
		t.Fatalf("average degree %.2f implausible for robust soliton at k=%d", avg, k)
	}
	if ones == 0 {
		t.Fatal("no degree-1 packets in sample; ripple can never start")
	}
	t.Logf("avg degree %.2f, degree-1 fraction %.4f", avg, float64(ones)/samples)
}

func TestEncodeRangeBatchingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c, err := New(50, 48, 77, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := randomSrc(t, rng, 50, 48)
	lo, hi := 1234, 1234+96
	batch, err := c.EncodeRange(src, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < hi; i++ {
		one, err := c.EncodeRange(src, i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i-lo], one[0]) {
			t.Fatalf("packet %d differs between batch and single generation", i)
		}
	}
}

func TestEncodeIsUnavailable(t *testing.T) {
	c, err := New(10, 16, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(make([][]byte, 10)); err == nil {
		t.Fatal("Encode should fail for a rateless codec")
	}
	if c.N() != code.UnboundedN {
		t.Fatalf("N() = %d, want UnboundedN", c.N())
	}
	if !code.IsRateless(c) {
		t.Fatal("codec should report rateless capability")
	}
}

func TestDecoderIgnoresDuplicatesAndPostCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c, err := New(40, 24, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := randomSrc(t, rng, 40, 24)
	d := c.NewDecoder()
	var donePkt []byte
	for i := 0; ; i++ {
		pkts, err := c.EncodeRange(src, i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			donePkt = append([]byte(nil), pkts[0]...)
			// Duplicate adds must not change Received.
			if _, err := d.Add(0, pkts[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Add(0, pkts[0]); err != nil {
				t.Fatal(err)
			}
			if got := d.Received(); got != 1 {
				t.Fatalf("Received=%d after duplicate, want 1", got)
			}
			continue
		}
		done, err := d.Add(i, pkts[0])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if done, err := d.Add(0, donePkt); err != nil || !done {
		t.Fatalf("post-completion Add: done=%v err=%v", done, err)
	}
	if _, err := d.Source(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16, 1, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, 0, 1, 0, 0); err == nil {
		t.Fatal("packetLen=0 accepted")
	}
	c, err := New(4, 16, 1, -1, 7) // out-of-range params fall back to defaults
	if err != nil {
		t.Fatal(err)
	}
	cc, delta := c.Params()
	if cc != DefaultC || delta != DefaultDelta {
		t.Fatalf("defaults not applied: c=%v delta=%v", cc, delta)
	}
}
