package lt

import "testing"

// FuzzLTNeighbors: for arbitrary (seed, index, k), neighbor-set generation
// must be deterministic (two invocations agree), in-range, duplicate-free,
// and consistent with Degree. This is the advance agreement the whole
// rateless session rests on — any divergence between an encoder's and a
// decoder's neighbor derivation corrupts every packet silently, so the
// property is fuzzed rather than spot-checked.
func FuzzLTNeighbors(f *testing.F) {
	f.Add(int64(1998), uint32(0), uint16(100))
	f.Add(int64(-1), uint32(1<<31), uint16(1))
	f.Add(int64(0), uint32(4294967295), uint16(4095))
	f.Add(int64(7777), uint32(12345), uint16(2))
	f.Fuzz(func(t *testing.T, seed int64, index uint32, kRaw uint16) {
		k := int(kRaw)%4096 + 1 // arbitrary k, clamped to a valid, fast range
		c, err := New(k, 8, seed, 0, 0)
		if err != nil {
			t.Fatalf("New(k=%d): %v", k, err)
		}
		a := c.NeighborsInto(index, nil)
		b := c.NeighborsInto(index, make([]int, 0, len(a)))
		if len(a) != len(b) {
			t.Fatalf("nondeterministic degree: %d vs %d", len(a), len(b))
		}
		if d := c.Degree(index); d != len(a) {
			t.Fatalf("Degree=%d but %d neighbors", d, len(a))
		}
		if len(a) < 1 || len(a) > k {
			t.Fatalf("degree %d out of [1,%d]", len(a), k)
		}
		seen := make(map[int]bool, len(a))
		for i, nb := range a {
			if nb != b[i] {
				t.Fatalf("nondeterministic neighbor %d: %d vs %d", i, nb, b[i])
			}
			if nb < 0 || nb >= k {
				t.Fatalf("neighbor %d out of [0,%d)", nb, k)
			}
			if seen[nb] {
				t.Fatalf("duplicate neighbor %d", nb)
			}
			seen[nb] = true
		}
	})
}
