// Package fountain is a Go implementation of the digital fountain approach
// to reliable distribution of bulk data (Byers, Luby, Mitzenmacher, Rege —
// SIGCOMM 1998).
//
// A digital fountain server encodes a file once with a fast erasure code
// and cycles endlessly through the encoding; any number of receivers join
// at any time, collect whichever packets the network delivers, and
// reconstruct the file as soon as enough packets — any packets — have
// arrived. No feedback channel, retransmission, or per-receiver state is
// needed.
//
// The package exposes:
//
//   - Erasure codecs: Tornado codes (the paper's contribution: XOR-only
//     sparse-graph codes with a few percent reception overhead and
//     near-linear coding time), Reed-Solomon baselines (Vandermonde and
//     Cauchy), interleaved block codes, a rateless LT code (the true
//     unbounded fountain the fixed-rate codes approximate — see NewLT),
//     and a precoded systematic raptor code whose first k packets are the
//     source itself (see NewRaptor).
//   - Sessions: a file bound to a codec and a carousel/layered schedule.
//   - Server and Client engines speaking the prototype's wire protocol
//     (12-byte headers, SP/burst markers, layered congestion control)
//     over in-process or UDP transports.
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for
// the paper-reproduction methodology and results.
package fountain

import (
	"net"

	"repro/internal/client"
	"repro/internal/code"
	"repro/internal/core"
	"repro/internal/interleave"
	"repro/internal/lt"
	"repro/internal/proto"
	"repro/internal/raptor"
	"repro/internal/rs"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/tornado"
	"repro/internal/transport"
)

// Codec is a systematic erasure code over fixed-size packets: k source
// packets are stretched to n encoding packets, and decoders report — packet
// by packet — when the source is recoverable.
type Codec = code.Codec

// Decoder incrementally consumes encoding packets (in any order, with any
// subset missing) until the source is recoverable.
type Decoder = code.Decoder

// ErrNotReady is returned by Decoder.Source before enough packets arrived.
var ErrNotReady = code.ErrNotReady

// Tornado code variants (§5 of the paper).
var (
	// TornadoA is the fast variant (average reception overhead ≈ 5%).
	TornadoA = tornado.A
	// TornadoB is the slower, lower-overhead variant (≈ 3%).
	TornadoB = tornado.B
)

// NewTornado constructs a Tornado codec: an XOR-only erasure code over a
// cascade of LP-designed sparse random bipartite graphs. The seed
// determines the graphs; sender and receivers must agree on it.
func NewTornado(p tornado.Params, k, n, packetLen int, seed int64) (Codec, error) {
	return tornado.New(p, k, n, packetLen, seed)
}

// NewVandermonde constructs the Rizzo-style Reed-Solomon baseline over
// GF(2^16): optimal reception (any k of n) but O(k·l) encode and O(k^3)
// decode — the cost the paper's Tables 2-3 quantify.
func NewVandermonde(k, n, packetLen int) (Codec, error) {
	return rs.NewVandermonde(k, n, packetLen)
}

// NewCauchy constructs the Blömer-style Cauchy Reed-Solomon baseline
// (XOR bit-matrix coding, closed-form O(x^2) decode-matrix inversion).
func NewCauchy(k, n, packetLen int) (Codec, error) {
	return rs.NewCauchy(k, n, packetLen)
}

// NewInterleaved constructs the interleaved block-code baseline of §6:
// blocks of blockK source packets individually Reed-Solomon coded and
// interleaved on the carousel.
func NewInterleaved(totalK, blockK, stretch, packetLen int) (Codec, error) {
	return interleave.NewForFile(totalK, blockK, stretch, packetLen)
}

// RatelessN is the N() sentinel of a rateless codec: the index space is
// effectively unbounded, so carousels stream fresh monotone indices
// forever instead of cycling a finite encoding.
const RatelessN = code.UnboundedN

// NewLT constructs the rateless Luby Transform codec — the realization of
// the paper's ideal digital fountain (§3, §9). Every encoding packet's
// degree and neighbor set are a pure function of (seed, index) under the
// robust soliton distribution; c and delta tune it (<= 0 selects the
// defaults). Any k(1+ε) distinct packets decode, ε a few percent, via
// peeling plus an inactivation fallback. LT sessions need no stretch
// factor, no carousel phase coordination between mirrors, and no repair
// memory beyond the source packets.
func NewLT(k, packetLen int, seed int64, c, delta float64) (Codec, error) {
	return lt.New(k, packetLen, seed, c, delta)
}

// NewRaptor constructs the precoded systematic rateless codec: a sparse
// Tornado-style precode stretches the k source packets to k+checks
// intermediate symbols, and a weakened truncated-soliton LT code emits over
// the intermediates. The first k encoding packets ARE the source packets —
// a lossless receiver stores k packets verbatim and performs zero XOR work
// — and the precode's check equations are free rank, so decode cost stays
// linear and reception overhead a couple of percent. c/delta tune the
// inner distribution, checks/maxD the precode size and degree truncation
// (<= 0 everywhere selects k-dependent defaults).
func NewRaptor(k, packetLen int, seed int64, c, delta float64, checks, maxD int) (Codec, error) {
	return raptor.New(k, packetLen, seed, c, delta, checks, maxD)
}

// IsRateless reports whether a codec's index space is unbounded (its N()
// is RatelessN and every packet is derivable independently by index).
func IsRateless(c Codec) bool { return code.IsRateless(c) }

// Session is an encoded file ready for fountain transmission.
type Session = core.Session

// Config selects a session's codec, packet size, stretch factor, layer
// count and seed.
type Config = core.Config

// Receiver consumes fountain packets and reconstructs the file.
type Receiver = core.Receiver

// SessionInfo is the control-channel descriptor a server hands to clients.
type SessionInfo = proto.SessionInfo

// Codec identifiers for Config.Codec / SessionInfo.Codec.
const (
	CodecTornadoA    = proto.CodecTornadoA
	CodecTornadoB    = proto.CodecTornadoB
	CodecVandermonde = proto.CodecVandermonde
	CodecCauchy      = proto.CodecCauchy
	CodecInterleaved = proto.CodecInterleaved
	CodecLT          = proto.CodecLT
	CodecRaptor      = proto.CodecRaptor
)

// DefaultConfig mirrors the paper's prototype: Tornado A, 500-byte
// payloads, stretch 2, 4 layers.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSession encodes data for fountain distribution (eagerly — the full
// encoding is materialized up front).
func NewSession(data []byte, cfg Config) (*Session, error) { return core.NewSession(data, cfg) }

// BlockCache is a shared byte-bounded cache of lazily encoded repair
// blocks: hand one cache to every NewSessionCached call so a server holding
// many files keeps its repair-packet memory under a single budget.
type BlockCache = core.BlockCache

// NewBlockCache creates a block cache with the given byte budget.
func NewBlockCache(capBytes int64) *BlockCache { return core.NewBlockCache(capBytes) }

// NewSessionCached builds a session that encodes repair blocks on first
// carousel touch, bounded by the shared cache. Codecs without per-range
// encoding (Tornado) fall back to eager encoding.
func NewSessionCached(data []byte, cfg Config, cache *BlockCache) (*Session, error) {
	return core.NewSessionCached(data, cfg, cache)
}

// Carousel walks a session's transmission schedule as a stream of stamped
// wire packets (rounds, per-layer serials, SP/burst flags).
type Carousel = core.Carousel

// NewCarousel starts a fresh carousel over the session.
func NewCarousel(sess *Session) *Carousel { return core.NewCarousel(sess) }

// NewCarouselAt starts a carousel at a round phase offset — mirrors of a
// shared encoding transmit from staggered positions (§8) so a multi-source
// receiver accumulates few early duplicates.
func NewCarouselAt(sess *Session, phase int) *Carousel { return core.NewCarouselAt(sess, phase) }

// NewReceiver builds a receiver from a session descriptor.
func NewReceiver(info SessionInfo) (*Receiver, error) { return core.NewReceiver(info) }

// Server walks the carousel schedule and transmits rounds onto a
// transport (step-by-step or paced in real time).
type Server = server.Engine

// NewServer binds a session to a transport sender.
func NewServer(sess *Session, tx server.Sender) *Server { return server.New(sess, tx) }

// Client is the receiving engine: decoding, efficiency accounting and
// layered congestion control.
type Client = client.Engine

// NewClient builds a client engine; setLevel (may be nil) is called when
// the congestion controller changes the subscription level.
func NewClient(info SessionInfo, startLevel int, setLevel func(int)) (*Client, error) {
	return client.New(info, startLevel, setLevel)
}

// SourceStats is the per-mirror accounting snapshot of a multi-source
// client (received/lost/distinct/duplicate packets, measured loss, and the
// source controller's level).
type SourceStats = client.SourceStats

// NewMultiSourceClient builds a client engine that harvests one session
// from several independent mirrors (§8 "mirrored data"): feed it packets
// with Client.HandlePacketFrom(source, pkt). Loss is measured per
// (source, layer) serial space, duplicate/distinct contributions are
// tracked per source, and the subscription level passed to setLevel is the
// minimum across the per-source congestion controllers — the worst-loss
// source rule.
func NewMultiSourceClient(info SessionInfo, sources, startLevel int, setLevel func(int)) (*Client, error) {
	return client.NewMultiSource(info, sources, startLevel, setLevel)
}

// PacketSender is the minimal transmit side of a transport: one packet
// per call. Any struct with Send(layer, pkt) works as a service transport.
type PacketSender = transport.PacketSender

// Sender is the unified transmit side of a transport: per-packet Send
// plus per-layer SendBatch. Bus and UDPServer implement it natively; the
// service's pacing scheduler emits whole carousel rounds through it as
// per-layer batches built in pooled buffers (zero-copy, zero-alloc).
// Packet buffers may be reused once Send/SendBatch returns, so receivers
// must copy anything they keep.
type Sender = transport.Sender

// AsSender upgrades a PacketSender with a portable SendBatch fallback
// loop (batch-capable senders pass through untouched).
func AsSender(s PacketSender) Sender { return transport.AsSender(s) }

// Bus is the in-process lossy multicast transport (deterministic, virtual
// time — used by the simulations and examples).
type Bus = transport.Bus

// NewBus creates an in-process transport with the given layer count.
func NewBus(layers int) *Bus { return transport.NewBus(layers) }

// UDPServer / UDPClient are the real-socket transport of the prototype.
type (
	// UDPServer owns the data socket and per-layer subscriber sets.
	UDPServer = transport.UDPServer
	// UDPClient subscribes to layers and receives packets.
	UDPClient = transport.UDPClient
)

// NewUDPServer listens on addr and serves the given number of layers.
func NewUDPServer(addr string, layers int) (*UDPServer, error) {
	return transport.NewUDPServer(addr, layers)
}

// NewUDPClient dials a UDP server's data address and subscribes to layers
// 0..level of every session the server carries.
func NewUDPClient(server *net.UDPAddr, level int) (*UDPClient, error) {
	return transport.NewUDPClient(server, level)
}

// NewUDPClientSession dials a UDP server's data address and subscribes to
// layers 0..level of one session (the server muxes all its sessions over
// one data socket).
func NewUDPClientSession(server *net.UDPAddr, session uint16, level int) (*UDPClient, error) {
	return transport.NewUDPClientSession(server, session, level)
}

// MultiClient joins the same session on several fountain servers at once
// and funnels their packets, tagged with a source index, into one queue —
// the transport half of the §8 mirrored-download application.
type MultiClient = transport.MultiClient

// NewMultiClient dials every server's data address and subscribes each to
// layers 0..level of the session. Pair it with NewMultiSourceClient:
// Recv's source index feeds HandlePacketFrom.
func NewMultiClient(servers []*net.UDPAddr, session uint16, level int) (*MultiClient, error) {
	return transport.NewMultiClient(servers, session, level)
}

// SessionAny is the wildcard session id for UDP subscriptions.
const SessionAny = transport.SessionAny

// RecvBatch is a reusable set of pooled receive buffers for
// UDPClient.RecvBatch — one recvmmsg(2) visit per fill on linux/amd64, so
// a steady-state receive loop drains datagram bursts with one syscall and
// zero allocations.
type RecvBatch = transport.RecvBatch

// Receive-loop terminal conditions: ErrTimeout means the socket is healthy
// but idle (poll again); ErrClosed means the client was closed (stop).
var (
	ErrRecvClosed  = transport.ErrClosed
	ErrRecvTimeout = transport.ErrTimeout
)

// UDPLimits is a UDP server's admission-control and abuse policy: a cap
// on distinct subscriber addresses, eviction of subscribers whose writes
// keep failing (with a cooldown penalty box), and an optional
// per-subscriber packets-per-second token bucket. Apply with
// UDPServer.SetLimits; inspect the counters with UDPServer.Hardening.
type UDPLimits = transport.UDPLimits

// UDPHardening is the snapshot of a UDP server's policy counters:
// evictions, refused joins, and rate-capped drops.
type UDPHardening = transport.UDPHardening

// RetryPolicy bounds a control-plane request: per-attempt timeout and a
// jittered exponential backoff between attempts, so clients fail fast
// against dead servers and still reach slow or restarting ones.
type RetryPolicy = transport.RetryPolicy

// RequestSessionInfoRetry sends a control request under a RetryPolicy.
// The zero policy means 5 attempts, 500ms timeout, 100ms base backoff.
func RequestSessionInfoRetry(ctrl *net.UDPAddr, req []byte, p RetryPolicy) ([]byte, error) {
	return transport.RequestSessionInfoRetry(ctrl, req, p)
}

// Service is the multi-session fountain server core: a registry of
// concurrent sessions over one transport, all driven by one shared pacing
// scheduler (a deadline heap per shard worker — no per-session
// goroutines), emitting through pooled buffers and per-layer batches,
// with a shared bounded lazy-encoding cache, catalog discovery, and basic
// counters.
type Service = service.Service

// ServiceConfig tunes a Service (cache budget, default rate, scheduler
// shard count).
type ServiceConfig = service.Config

// ServiceStats is a snapshot of a Service's counters.
type ServiceStats = service.Stats

// Admission-control errors from Service session registration.
var (
	// ErrSessionLimit is returned when ServiceConfig.MaxSessions is
	// reached; freeing a slot (Service.Remove) admits again.
	ErrSessionLimit = service.ErrSessionLimit
	// ErrDraining is returned once Service.Drain has begun: the service
	// finishes in-flight rounds and keeps answering control probes, but
	// registers nothing new.
	ErrDraining = service.ErrDraining
)

// NewService creates a service transmitting on tx — any PacketSender
// works; batch-capable transports (Bus, UDPServer) receive whole
// per-layer batches per call. Add sessions with Service.AddData /
// Service.Add (Service.AddPhased to stagger a mirror's carousel); serve
// discovery by wiring Service.HandleControl to a control socket.
func NewService(tx PacketSender, cfg ServiceConfig) *Service { return service.New(tx, cfg) }
