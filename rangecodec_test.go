package fountain

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/code"
)

// TestRangeEncoderDifferential: for every codec implementing
// code.RangeEncoder, EncodeRange(src, lo, hi) must be byte-identical to the
// corresponding slice of the full encoding — property-style over random
// [lo, hi) windows. The lazy fountain service depends on this exactness:
// a receiver decodes against the full-encoding definition while the server
// only ever materializes windows.
//
// The rateless LT codec has no finite full encoding to slice; its
// reference is per-index generation, and the invariant becomes "batching
// does not change content" plus prefix consistency across overlapping
// windows.
func TestRangeEncoderDifferential(t *testing.T) {
	const (
		k   = 120
		pl  = 64
		win = 40 // random windows per codec
	)
	rng := rand.New(rand.NewSource(2024))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, pl)
		rng.Read(src[i])
	}

	codecs := []struct {
		name string
		mk   func() (Codec, error)
	}{
		{"vandermonde", func() (Codec, error) { return NewVandermonde(k, 2*k, pl) }},
		{"cauchy", func() (Codec, error) { return NewCauchy(k, 2*k, pl) }},
		{"interleaved", func() (Codec, error) { return NewInterleaved(k, 30, 2, pl) }},
		{"lt", func() (Codec, error) { return NewLT(k, pl, 99, 0, 0) }},
	}
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			ranger, ok := c.(code.RangeEncoder)
			if !ok {
				t.Fatalf("%s does not implement code.RangeEncoder", tc.name)
			}
			if IsRateless(c) {
				// Reference: one-packet-at-a-time generation; windows drawn
				// from deep inside the unbounded index space.
				for w := 0; w < win; w++ {
					lo := rng.Intn(1 << 30)
					hi := lo + 1 + rng.Intn(2*k)
					got, err := ranger.EncodeRange(src, lo, hi)
					if err != nil {
						t.Fatal(err)
					}
					for i := lo; i < hi; i++ {
						one, err := ranger.EncodeRange(src, i, i+1)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got[i-lo], one[0]) {
							t.Fatalf("window [%d,%d): packet %d differs from single generation", lo, hi, i)
						}
					}
				}
				return
			}
			full, err := c.Encode(src)
			if err != nil {
				t.Fatal(err)
			}
			n := c.N()
			// Always cover the boundary windows, then random ones.
			windows := [][2]int{{0, 0}, {0, n}, {k - 1, k + 1}, {n - 1, n}}
			for w := 0; w < win; w++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				windows = append(windows, [2]int{lo, hi})
			}
			for _, lohi := range windows {
				lo, hi := lohi[0], lohi[1]
				got, err := ranger.EncodeRange(src, lo, hi)
				if err != nil {
					t.Fatalf("EncodeRange[%d,%d): %v", lo, hi, err)
				}
				if len(got) != hi-lo {
					t.Fatalf("EncodeRange[%d,%d): %d packets", lo, hi, len(got))
				}
				for i := lo; i < hi; i++ {
					if !bytes.Equal(got[i-lo], full[i]) {
						t.Fatalf("window [%d,%d): packet %d differs from Encode", lo, hi, i)
					}
				}
			}
		})
	}
}
