// Softwaredist reproduces the paper's motivating scenario (§1-§2): one
// server distributes a software image to a heterogeneous population of
// receivers that join at different times, see different loss rates, and
// use layered congestion control — all with zero feedback to the server.
package main

import (
	"fmt"
	"log"
	"math/rand"

	fountain "repro"
	"repro/internal/netsim"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	lossRng := netsim.NewRNG(7)
	image := make([]byte, 512<<10) // the software release
	rng.Read(image)

	cfg := fountain.DefaultConfig() // Tornado A, 4 layers
	sess, err := fountain.NewSession(image, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bus := fountain.NewBus(4)
	srv := fountain.NewServer(sess, bus)

	type receiver struct {
		name    string
		lossP   float64
		joinAt  int // round at which the client tunes in
		client  *fountain.Client
		doneAt  int
		started bool
	}
	pop := []*receiver{
		{name: "fiber", lossP: 0.01, joinAt: 0},
		{name: "dsl", lossP: 0.05, joinAt: 50},
		{name: "congested", lossP: 0.20, joinAt: 120},
		{name: "wireless", lossP: 0.45, joinAt: 200},
	}
	for _, r := range pop {
		r := r
		eng, err := fountain.NewClient(sess.Info(), 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		r.client = eng
	}

	// Drive the fountain; receivers attach asynchronously.
	for round := 0; ; round++ {
		allDone := true
		for _, r := range pop {
			if r.joinAt == round && !r.started {
				r.started = true
				rr := r
				var bc interface{ SetLevel(int) }
				c := bus.NewClient(1, &netsim.Bernoulli{P: r.lossP, Rng: lossRng}, func(_ int, pkt []byte) {
					rr.client.HandlePacket(pkt)
				})
				bc = c
				_ = bc
			}
			if r.started && !r.client.Done() {
				allDone = false
			}
			if r.started && r.client.Done() && r.doneAt == 0 {
				r.doneAt = round
			}
			if !r.started {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if err := srv.Step(); err != nil {
			log.Fatal(err)
		}
		if round > 2_000_000 {
			log.Fatal("population never finished")
		}
	}
	fmt.Println("software image distributed; per-receiver outcomes:")
	for _, r := range pop {
		file, err := r.client.File()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		eta, _, _ := r.client.Efficiency()
		fmt.Printf("  %-10s loss=%4.1f%%  joined@%-4d done@%-5d bytes=%d eta=%.3f\n",
			r.name, 100*r.client.MeasuredLoss(), r.joinAt, r.doneAt, len(file), eta)
	}
	fmt.Println("no receiver ever sent a single packet back to the server.")
}
