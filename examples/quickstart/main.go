// Quickstart: encode a file with a Tornado code, push it through a lossy
// channel as a digital fountain, and reconstruct it from whatever arrives.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	fountain "repro"
)

func main() {
	// The "file" to distribute: 1 MB of data.
	rng := rand.New(rand.NewSource(42))
	file := make([]byte, 1<<20)
	rng.Read(file)

	// A digital fountain session: Tornado A, stretch factor 2.
	cfg := fountain.DefaultConfig()
	cfg.Layers = 1 // single multicast group, randomized carousel
	sess, err := fountain.NewSession(file, cfg)
	if err != nil {
		log.Fatal(err)
	}
	info := sess.Info()
	fmt.Printf("session: k=%d source packets stretched to n=%d\n", info.K, info.N)

	// A receiver that joined mid-stream, behind a 40%-loss channel.
	rcv, err := fountain.NewReceiver(info)
	if err != nil {
		log.Fatal(err)
	}
	sent := 0
	for round := 0; !rcv.Done(); round++ {
		for _, idx := range sess.CarouselIndices(0, round) {
			sent++
			if rng.Float64() < 0.4 {
				continue // lost in the network
			}
			if _, err := rcv.HandleRaw(sess.Packet(idx, 0, uint32(round), 0)); err != nil {
				log.Fatal(err)
			}
		}
	}
	got, err := rcv.File()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		log.Fatal("reconstructed file differs!")
	}
	eta, etaC, etaD := rcv.Efficiency()
	fmt.Printf("reconstructed %d bytes intact after %d transmissions\n", len(got), sent)
	fmt.Printf("reception efficiency: eta=%.3f (coding %.3f x distinctness %.3f)\n", eta, etaC, etaD)
}
