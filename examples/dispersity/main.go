// Dispersity demonstrates the §8 "dispersity routing" application (after
// Rabin's information dispersal): a source sprays fountain packets across
// several network paths with very different loss and delay; the
// destination reconstructs as soon as enough packets arrive over any
// combination of paths, without caring which path delivered what.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sort"

	fountain "repro"
	"repro/internal/netsim"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	lossRng := netsim.NewRNG(13)
	payload := make([]byte, 128<<10)
	rng.Read(payload)

	cfg := fountain.DefaultConfig()
	cfg.Layers = 1
	sess, err := fountain.NewSession(payload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	info := sess.Info()

	// Four paths: (loss process, one-way delay in ticks). The congested
	// path is bursty (Gilbert-Elliott), the others Bernoulli.
	type path struct {
		name  string
		loss  netsim.LossProcess
		delay int
		used  int
	}
	paths := []*path{
		{name: "terrestrial-1", loss: &netsim.Bernoulli{P: 0.05, Rng: lossRng}, delay: 10},
		{name: "terrestrial-2", loss: &netsim.Bernoulli{P: 0.15, Rng: lossRng}, delay: 14},
		{name: "congested", loss: &netsim.GilbertElliott{PGB: 0.05, PBG: 0.2, LossGood: 0.05, LossBad: 0.9, Rng: lossRng}, delay: 40},
		{name: "satellite", loss: &netsim.Bernoulli{P: 0.30, Rng: lossRng}, delay: 120},
	}

	rcv, err := fountain.NewReceiver(info)
	if err != nil {
		log.Fatal(err)
	}
	type inflight struct {
		at  int
		idx int
		p   *path
	}
	var queue []inflight
	tick := 0
	next := 0 // carousel position
	n := int(info.N)
	doneAt := -1
	for doneAt < 0 {
		// Source sprays one packet per path per tick, round-robin over the
		// encoding.
		for _, p := range paths {
			idx := sess.CarouselIndices(0, next)[0]
			next++
			if !p.loss.Lose() {
				queue = append(queue, inflight{at: tick + p.delay, idx: idx, p: p})
			}
		}
		// Deliveries due this tick (sorted for determinism).
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].at < queue[j].at })
		for len(queue) > 0 && queue[0].at <= tick {
			d := queue[0]
			queue = queue[1:]
			d.p.used++
			if done, _ := rcv.HandleRaw(sess.Packet(d.idx, 0, uint32(tick), 0)); done {
				doneAt = tick
				break
			}
		}
		tick++
		if tick > 100*n {
			log.Fatal("transfer never completed")
		}
	}
	got, err := rcv.File()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("payload corrupted")
	}
	fmt.Printf("delivered %d bytes over 4 dispersed paths in %d ticks\n", len(got), doneAt)
	for _, p := range paths {
		fmt.Printf("  %-14s delay=%-4d delivered %d packets\n", p.name, p.delay, p.used)
	}
	eta, _, _ := rcv.Efficiency()
	fmt.Printf("efficiency eta=%.3f — packets were useful regardless of path\n", eta)
}
