// Mirrored demonstrates the §8 "mirrored data" application over real
// loopback UDP: three independent fountain services carry the same file
// (same codec, same seed — so the encodings are identical) at staggered
// carousel phases, and one client harvests from all of them at once with a
// MultiClient feeding a multi-source engine. No coordination between the
// mirrors is needed because every packet of the shared encoding is useful
// at most once; the staggered phases, advertised over each mirror's
// control socket, keep early duplicates near zero.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	fountain "repro"
	"repro/internal/proto"
	"repro/internal/transport"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	file := make([]byte, 256<<10)
	rng.Read(file)

	cfg := fountain.DefaultConfig()
	cfg.Layers = 1

	// Three mirrors: each its own UDP socket and service, sharing the
	// session seed (e.g. distributed alongside the file's metadata) but
	// starting the carousel a third of a cycle apart.
	const mirrors = 3
	var (
		dataAddrs []*net.UDPAddr
		ctrlAddrs []*net.UDPAddr
	)
	for i := 0; i < mirrors; i++ {
		sess, err := fountain.NewSession(file, cfg)
		if err != nil {
			log.Fatal(err)
		}
		udp, err := fountain.NewUDPServer("127.0.0.1:0", cfg.Layers)
		if err != nil {
			log.Fatal(err)
		}
		defer udp.Close()
		svc := fountain.NewService(udp, fountain.ServiceConfig{})
		defer svc.Close()
		phase := sess.Codec().N() * i / mirrors
		if err := svc.AddPhased(sess, 4000, phase); err != nil {
			log.Fatal(err)
		}
		ctrl, stopCtrl, err := transport.ServeControlFunc("127.0.0.1:0", svc.HandleControl)
		if err != nil {
			log.Fatal(err)
		}
		defer stopCtrl()
		dataAddrs = append(dataAddrs, udp.Addr())
		ctrlAddrs = append(ctrlAddrs, ctrl)
	}

	// The client learns each mirror's parameters — phase included — over
	// the real control channel; any mirror's descriptor suffices to decode.
	var info fountain.SessionInfo
	for i, ctrl := range ctrlAddrs {
		reply, err := transport.RequestSessionInfo(ctrl, proto.MarshalHello(), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		mi, err := proto.ParseSessionInfo(reply)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mirror %d at %s: session %#x phase %d\n", i, dataAddrs[i], mi.Session, mi.Phase)
		if i == 0 {
			info = mi
		}
	}

	mc, err := fountain.NewMultiClient(dataAddrs, info.Session, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer mc.Close()
	eng, err := fountain.NewMultiSourceClient(info, mirrors, 0, func(l int) { mc.SetLevel(l) })
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	deadline := start.Add(30 * time.Second)
	for !eng.Done() {
		if time.Now().After(deadline) {
			log.Fatal("download never completed")
		}
		src, pkt, ok := mc.Recv(time.Second)
		if !ok {
			continue
		}
		if _, err := eng.HandlePacketFrom(src, pkt); err != nil {
			continue // stray datagram
		}
	}
	got, err := eng.File()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		log.Fatal("aggregate download corrupted")
	}
	eta, _, etaD := eng.Efficiency()
	fmt.Printf("downloaded %d bytes from %d mirrors in %v\n", len(got), mirrors, time.Since(start).Round(time.Millisecond))
	for _, src := range eng.Sources() {
		st := eng.SourceStats(src)
		fmt.Printf("  mirror %d: contributed %d packets (%d distinct, %d duplicate, %.1f%% loss)\n",
			src, st.Received, st.Distinct, st.Duplicate, 100*st.Loss)
	}
	fmt.Printf("aggregate efficiency eta=%.3f (distinctness %.3f)\n", eta, etaD)
}
