// Mirrored demonstrates the §8 "mirrored data" application: a client
// drinks simultaneously from several independent fountain servers carrying
// the same file and aggregates whatever packets arrive from any of them —
// no coordination between mirrors is needed because every packet of the
// shared encoding is useful at most once.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	fountain "repro"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	file := make([]byte, 256<<10)
	rng.Read(file)

	// Three mirrors share the session seed (e.g. distributed alongside the
	// file's metadata), so they emit the same encoding — but each carousel
	// is at a different position.
	cfg := fountain.DefaultConfig()
	cfg.Layers = 1
	mirrors := make([]*fountain.Session, 3)
	for i := range mirrors {
		s, err := fountain.NewSession(file, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mirrors[i] = s
	}

	rcv, err := fountain.NewReceiver(mirrors[0].Info())
	if err != nil {
		log.Fatal(err)
	}
	// Each mirror path has its own loss rate and the client starts reading
	// each carousel at a random offset.
	lossP := []float64{0.6, 0.5, 0.7} // every single path is terrible
	offsets := []int{0, 1000, 2500}
	perMirror := make([]int, 3)
	total := 0
	for round := 0; !rcv.Done(); round++ {
		for m, sess := range mirrors {
			for _, idx := range sess.CarouselIndices(0, round+offsets[m]) {
				total++
				if rng.Float64() < lossP[m] {
					continue
				}
				perMirror[m]++
				if _, err := rcv.HandleRaw(sess.Packet(idx, 0, uint32(round), 0)); err != nil {
					log.Fatal(err)
				}
			}
		}
		if round > 1_000_000 {
			log.Fatal("never finished")
		}
	}
	got, err := rcv.File()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		log.Fatal("aggregate download corrupted")
	}
	eta, _, etaD := rcv.Efficiency()
	fmt.Printf("downloaded %d bytes from 3 mirrors simultaneously\n", len(got))
	for m, n := range perMirror {
		fmt.Printf("  mirror %d (%.0f%% loss): contributed %d packets\n", m, 100*lossP[m], n)
	}
	fmt.Printf("aggregate efficiency eta=%.3f (distinctness %.3f)\n", eta, etaD)
}
