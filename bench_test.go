// Benchmarks mirroring the paper's evaluation: one benchmark per table or
// figure (scaled-down defaults; run cmd/repro -full for the complete
// grids). The absolute numbers are this machine's; the shapes — Tornado's
// near-linear coding vs Reed-Solomon's quadratic collapse, and the
// efficiency gap against interleaved codes — are the reproduction targets.
package fountain

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/benchproto"
	"repro/internal/gf"
	"repro/internal/netsim"
	"repro/internal/repro"
	"repro/internal/tornado"
)

func mkSrc(b *testing.B, k, pl int) [][]byte {
	b.Helper()
	return benchproto.Source(k, pl)
}

// BenchmarkTable2Encode measures encoding across the codec family
// (Table 2's columns) at a 512KB file size.
func BenchmarkTable2Encode(b *testing.B) {
	const k, pl = 512, 1024
	cases := []struct {
		name string
		mk   func() (Codec, error)
	}{
		{"Vandermonde", func() (Codec, error) { return NewVandermonde(k, 2*k, pl) }},
		{"Cauchy", func() (Codec, error) { return NewCauchy(k, 2*k, pl) }},
		{"TornadoA", func() (Codec, error) { return NewTornado(TornadoA(), k, 2*k, pl, 1) }},
		{"TornadoB", func() (Codec, error) { return NewTornado(TornadoB(), k, 2*k, pl, 1) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			codec, err := c.mk()
			if err != nil {
				b.Fatal(err)
			}
			src := mkSrc(b, k, pl)
			b.SetBytes(int64(k * pl))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Decode measures decoding (Table 3's protocol: RS from
// k/2 source + k/2 repair; Tornado from a random stream).
func BenchmarkTable3Decode(b *testing.B) {
	const k, pl = 512, 1024
	rng := rand.New(rand.NewSource(2))
	run := func(b *testing.B, codec Codec, tornadoStyle bool) {
		src := mkSrc(b, k, pl)
		enc, err := codec.Encode(src)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(k * pl))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Order generation is off the clock, mirroring cmd/bench, so
			// both surfaces report the same workload.
			b.StopTimer()
			var order []int
			if tornadoStyle {
				order = benchproto.TornadoOrder(rng, codec.N())
			} else {
				order = benchproto.RSOrder(rng, k)
			}
			b.StartTimer()
			d := codec.NewDecoder()
			for _, j := range order {
				if done, _ := d.Add(j, enc[j]); done {
					break
				}
			}
			if _, err := d.Source(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Vandermonde", func(b *testing.B) {
		c, _ := NewVandermonde(k, 2*k, pl)
		run(b, c, false)
	})
	b.Run("Cauchy", func(b *testing.B) {
		c, _ := NewCauchy(k, 2*k, pl)
		run(b, c, false)
	})
	b.Run("TornadoA", func(b *testing.B) {
		c, _ := NewTornado(TornadoA(), k, 2*k, pl, 1)
		run(b, c, true)
	})
	b.Run("TornadoB", func(b *testing.B) {
		c, _ := NewTornado(TornadoB(), k, 2*k, pl, 1)
		run(b, c, true)
	})
}

// BenchmarkFig2OverheadTrial measures one reception-overhead sample of the
// Figure 2 distribution (decode from a random packet order).
func BenchmarkFig2OverheadTrial(b *testing.B) {
	for _, p := range []tornado.Params{TornadoA(), TornadoB()} {
		b.Run(p.Variant, func(b *testing.B) {
			const k = 2048
			c, err := NewTornado(p, k, 2*k, 16, 3)
			if err != nil {
				b.Fatal(err)
			}
			src := mkSrc(b, k, 16)
			enc, _ := c.Encode(src)
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := c.NewDecoder()
				for _, j := range rng.Perm(c.N()) {
					if done, _ := d.Add(j, enc[j]); done {
						break
					}
				}
			}
		})
	}
}

// BenchmarkTable4Speedup regenerates a single Table 4 cell end to end
// (block-count search + timing ratio) at the quick scale.
func BenchmarkTable4Speedup(b *testing.B) {
	o := repro.Options{Seed: 5, Trials: 30}
	for i := 0; i < b.N; i++ {
		if err := repro.Table4(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Reception measures the Figure 4 population simulation: one
// receiver's carousel download per iteration, for each curve.
func BenchmarkFig4Reception(b *testing.B) {
	const k = 1024
	rng := netsim.NewRNG(6)
	curves := []struct {
		name string
		mk   func() netsim.Decodability
	}{
		{"TornadoA", func() netsim.Decodability {
			return &netsim.ThresholdDecoder{NTotal: 2 * k, Need: k + k/50}
		}},
		{"Interleaved-k50", func() netsim.Decodability {
			return netsim.NewBlockDecoder(2*k, k/50, 50)
		}},
		{"Interleaved-k20", func() netsim.Decodability {
			return netsim.NewBlockDecoder(2*k, k/20, 20)
		}},
	}
	for _, c := range curves {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				netsim.Carousel(c.mk(), &netsim.Bernoulli{P: 0.5, Rng: rng}, nil, rng, 0)
			}
		})
	}
}

// BenchmarkFig5FileSize measures the per-size population sweep of Figure 5
// at 250KB.
func BenchmarkFig5FileSize(b *testing.B) {
	const k = 250
	rng := netsim.NewRNG(7)
	for i := 0; i < b.N; i++ {
		dec := netsim.NewBlockDecoder(2*k, k/50, 50)
		netsim.Carousel(dec, &netsim.Bernoulli{P: 0.1, Rng: rng}, nil, rng, 0)
	}
}

// BenchmarkFig6Trace measures one trace-driven receiver download.
func BenchmarkFig6Trace(b *testing.B) {
	rng := netsim.NewRNG(8)
	ge := &netsim.GilbertElliott{PGB: 0.02, PBG: 0.1, LossGood: 0.02, LossBad: 0.7, Rng: rng}
	const k = 512
	for i := 0; i < b.N; i++ {
		dec := &netsim.ThresholdDecoder{NTotal: 2 * k, Need: k + k/30}
		netsim.Carousel(dec, ge, nil, rng, 0)
	}
}

// BenchmarkTable5Schedule measures schedule slot generation (Table 5 /
// Figure 7 machinery).
func BenchmarkTable5Schedule(b *testing.B) {
	s, err := NewSessionForBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for layer := 0; layer < 4; layer++ {
			s.CarouselIndices(layer, i)
		}
	}
}

// NewSessionForBench builds a small layered session for schedule benches.
func NewSessionForBench() (*Session, error) {
	data := make([]byte, 64<<10)
	cfg := DefaultConfig()
	return NewSession(data, cfg)
}

// BenchmarkFig8Prototype runs one complete prototype download (server ->
// lossy bus -> congestion-controlled client) per iteration.
func BenchmarkFig8Prototype(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 128<<10)
	rng.Read(data)
	lossRng := netsim.NewRNG(9)
	cfg := DefaultConfig()
	sess, err := NewSession(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus := NewBus(4)
		var lvl func(int)
		eng, err := NewClient(sess.Info(), 2, func(l int) { lvl(l) })
		if err != nil {
			b.Fatal(err)
		}
		bc := bus.NewClient(2, &netsim.Bernoulli{P: 0.2, Rng: lossRng}, func(_ int, pkt []byte) {
			eng.HandlePacket(pkt)
		})
		lvl = bc.SetLevel
		srv := NewServer(sess, bus)
		for !eng.Done() {
			if err := srv.Step(); err != nil {
				b.Fatal(err)
			}
		}
		bc.Close()
	}
}

// BenchmarkAblationXORKernel compares the crypto/subtle XOR kernel used
// throughout against a byte loop (the DESIGN.md ablation).
func BenchmarkAblationXORKernel(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	rand.New(rand.NewSource(10)).Read(src)
	b.Run("subtle", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			gf.XORSlice(dst, src)
		}
	})
	b.Run("byteloop", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			for j := range src {
				dst[j] ^= src[j]
			}
		}
	})
}

// BenchmarkAblationDenseTail sweeps the Tornado dense-tail size (the
// cascade-depth design choice) at fixed k.
func BenchmarkAblationDenseTail(b *testing.B) {
	const k = 4096
	for _, target := range []int{256, 1024, 2048} {
		b.Run(fmt.Sprintf("dense%d", target), func(b *testing.B) {
			p := TornadoA()
			p.DenseTarget = target
			c, err := NewTornado(p, k, 2*k, 64, 11)
			if err != nil {
				b.Fatal(err)
			}
			src := mkSrc(b, k, 64)
			enc, _ := c.Encode(src)
			rng := rand.New(rand.NewSource(12))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := c.NewDecoder()
				for _, j := range rng.Perm(c.N()) {
					if done, _ := d.Add(j, enc[j]); done {
						break
					}
				}
			}
		})
	}
}
